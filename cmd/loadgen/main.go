// Command loadgen runs a declarative workload scenario against one of
// the library's structures and emits the machine-readable perf record.
//
// A scenario comes from a JSON spec file (-spec) or is assembled from
// flags: the default flag-built scenario is the classic three-phase
// shape — load (inserts/enqueues only) → run (the mixed Zipfian op
// soup) → churn (the run mix across destroy/recreate rounds).
//
// Usage:
//
//	loadgen -spec scenario.json [-out report.json]
//	loadgen [-structure hashmap|queue|stack|skiplist] [-locales N]
//	        [-tasks N] [-backend ugni|none] [-seed N] [-keyspace N]
//	        [-dist uniform|zipfian|hotset] [-theta F] [-ops N]
//	        [-bulk N] [-rate F] [-latency-scale F]
//	        [-slow-locale I -slow-factor F]
//	        [-crash-locale I] [-crash-phase N] [-crash-after-ops N] [-failover]
//	        [-partition A,B] [-partition-phase N] [-heal-after MS]
//	        [-cache] [-cache-slots N] [-combine] [-rebalance]
//	        [-trace] [-trace-sample N] [-trace-out trace.json]
//	        [-http :8077] [-out report.json] [-print-spec] [-quiet]
//
// -cache enables the hashmap's per-locale read replication cache
// (hashmap only): gets are served from locale-private replicas,
// mutations write through with broadcast invalidation, and the report
// gains cache hit/miss/invalidation counters — compare the run phase's
// maxInbound with and without it under a hot-set distribution to see
// the owner hotspot disappear.
//
// -combine enables write absorption (hashmap only, mutually exclusive
// with -cache): mutations route through the fire-and-forget
// UpsertAgg/RemoveAgg path, repeat writes to a key absorb inside the
// source's aggregation buffer before shipping, and the owner drains
// deliveries through its flat combiner. The report gains absorbed/
// enqueued and CAS counters — compare the run phase's shipped-op total
// with and without it under a hot-set distribution to see the write
// storm collapse.
//
// -rebalance enables dynamic hot-shard rebalancing (hashmap only,
// composable with -combine, mutually exclusive with -cache): writes
// route to each bucket's current owner through the live owner table, a
// rebalance.Controller samples windowed comm-matrix column deltas on a
// periodic tick, and over-ratio owners hand their hottest buckets —
// contents included, via the epoch-coherent handoff — to cold locales.
// The phase summaries gain migration, moved-byte, and reroute counts —
// compare the run phase's maxInbound with and without it under a
// hot-set distribution to see the owner hotspot dissolve.
//
// -crash-locale kills one locale during the run (locale 0 cannot
// crash — it hosts the global epoch word): at the start of phase
// -crash-phase (default 1, the run phase), or mid-phase once the
// system has issued -crash-after-ops operations. Ops toward the dead
// locale are refused into the lost-ops ledger and the report gains an
// availability section. Add -failover (hashmap, queue and stack;
// excludes -cache) to have the survivors adopt the dead locale's
// shards and force-retire its stranded epoch tokens; without it the
// run demonstrates the wedged-reclamation regime and reports NOT
// RECOVERED. With
// -failover, a NOT RECOVERED verdict exits 1.
//
// -partition severs the locale pair A,B at the start of phase
// -partition-phase (default 1). With -heal-after the pair heals that
// many milliseconds after the sever; without it, at the next phase
// boundary (or never, when the sever lands in the last phase). Ops
// refused across the severed link park in the per-locale retry ledgers
// and redeliver at the heal — the report's availability section gains
// sever/heal counts, time-to-heal, and the parked/redelivered/expired
// settlement. A crash-free partitioned run that ends with unsettled
// retry books or a nonzero lost-ops ledger exits 1.
//
// -trace enables the event-tracing plane: begin/end spans for
// dispatch, flush, combine, epoch and migration lifecycles recorded
// into per-locale lock-free rings at 1-in-N sampling (-trace-sample,
// default 64; control-plane events always record). The report gains a
// trace section, and -trace-out writes the drained events as Chrome
// trace-event JSON — load it at https://ui.perfetto.dev to see the
// run's spans laid out per locale.
//
// -http starts the live telemetry server on the given address for the
// duration of the run: /api/status, /api/matrix, /api/hist,
// /api/trace?window=N (a live Perfetto-loadable window), POST
// /api/fault (runtime latency perturbation), and /debug/pprof.
//
// -print-spec writes the effective spec JSON to stdout (pipe it to a
// file, tweak, and feed it back with -spec). The run summary prints to
// stdout; -out writes the full workload.Report JSON. Exit status 1
// means the run detected a safety violation (use-after-free / double
// free), 2 a bad invocation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gopgas/internal/telemetry"
	"gopgas/internal/trace"
	"gopgas/internal/workload"
)

func main() {
	var (
		specPath  = flag.String("spec", "", "JSON scenario file (overrides the scenario flags)")
		structure = flag.String("structure", "hashmap", "target structure: hashmap|queue|stack|skiplist")
		locales   = flag.Int("locales", 4, "number of simulated locales")
		tasks     = flag.Int("tasks", 2, "worker tasks per locale")
		backend   = flag.String("backend", "none", "network-atomic backend: ugni or none")
		seed      = flag.Uint64("seed", 1, "scenario seed (op/key streams replay under one seed)")
		keyspace  = flag.Uint64("keyspace", 1<<16, "number of distinct keys")
		dist      = flag.String("dist", "zipfian", "key distribution: uniform|zipfian|hotset")
		theta     = flag.Float64("theta", 0.99, "zipfian skew, in (0,1)")
		ops       = flag.Int("ops", 20000, "ops per task in the run phase (load=1/2, churn=1/4 per round)")
		bulkSize  = flag.Int("bulk", 64, "bulk-op batch length")
		rate      = flag.Float64("rate", 0, "open-loop target ops/sec per task (0 = closed loop)")
		latScale  = flag.Float64("latency-scale", 0, "x the calibrated latency profile (0 = no injected latency)")
		slowLoc   = flag.Int("slow-locale", 0, "locale slowed by -slow-factor")
		slowFac   = flag.Float64("slow-factor", 0, "fault injection: slow one locale by this factor (0 = off)")
		crashLoc  = flag.Int("crash-locale", 0, "fault injection: crash this locale during the run (0 = off; locale 0 cannot crash)")
		crashPh   = flag.Int("crash-phase", 1, "phase index at whose start the crash lands (with -crash-locale)")
		crashOps  = flag.Int64("crash-after-ops", 0, "apply the crash mid-phase after this many system-wide ops instead of at the phase boundary")
		failover  = flag.Bool("failover", false, "recover from the crash: survivors adopt the dead locale's shards and its epoch tokens are force-retired (hashmap, queue and stack; excludes -cache)")
		partition = flag.String("partition", "", "fault injection: sever this locale pair \"A,B\" during the run")
		partPh    = flag.Int("partition-phase", 1, "phase index at whose start the sever lands (with -partition)")
		healAfter = flag.Float64("heal-after", 0, "heal the severed pair this many milliseconds after the sever (0 = at the next phase boundary)")
		useCache  = flag.Bool("cache", false, "enable the hot-key read replication cache (hashmap only)")
		cacheSlot = flag.Int("cache-slots", 0, "per-locale cache slots (0 = 256)")
		combine   = flag.Bool("combine", false, "enable write absorption: in-flight combining + owner-side flat combining (hashmap only, excludes -cache)")
		rebalance = flag.Bool("rebalance", false, "enable dynamic hot-shard rebalancing: owner-table routing + controller-driven bucket migration (hashmap only, excludes -cache)")
		traceOn   = flag.Bool("trace", false, "enable the event-tracing plane (spans for dispatch/flush/combine/epoch/migrate)")
		traceRate = flag.Int("trace-sample", 0, "trace 1 in N high-frequency events (0 = 64; control-plane events always record)")
		traceOut  = flag.String("trace-out", "", "write the drained trace as Chrome trace-event JSON here (implies -trace)")
		httpAddr  = flag.String("http", "", "serve live telemetry on this address (e.g. :8077) for the run's duration")
		outPath   = flag.String("out", "", "write the full report JSON here")
		printSpec = flag.Bool("print-spec", false, "print the effective spec JSON to stdout and exit")
		quiet     = flag.Bool("quiet", false, "suppress per-phase progress lines")
	)
	flag.Parse()

	var spec workload.Spec
	if *specPath != "" {
		var err error
		spec, err = workload.LoadSpec(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(2)
		}
	} else {
		spec = flagSpec(*structure, *locales, *tasks, *backend, *seed, *keyspace,
			*dist, *theta, *ops, *bulkSize, *rate, *latScale, *slowLoc, *slowFac)
		if *useCache {
			spec.Cache = &workload.CacheSpec{Enabled: true, Slots: *cacheSlot}
			spec.Name += "-cached"
		}
		if *combine {
			spec.Combine = &workload.CombineSpec{Enabled: true}
			spec.Name += "-combined"
		}
		if *rebalance {
			spec.Rebalance = &workload.RebalanceSpec{Enabled: true}
			spec.Name += "-rebalanced"
		}
		if *crashLoc != 0 {
			spec.Faults.Crashes = []workload.CrashSpec{{
				Locale:   *crashLoc,
				Phase:    *crashPh,
				AfterOps: *crashOps,
				Failover: *failover,
			}}
			spec.Name += "-crashed"
		}
		if *partition != "" {
			var a, b int
			if _, err := fmt.Sscanf(*partition, "%d,%d", &a, &b); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: -partition wants \"A,B\", got %q\n", *partition)
				os.Exit(2)
			}
			ps := workload.PartitionSpec{A: a, B: b, Phase: *partPh, HealAfterMS: *healAfter}
			// No wall-clock heal: heal at the next phase boundary, or never
			// when the sever lands in the last phase.
			if *healAfter == 0 && *partPh+1 < len(spec.Phases) {
				ps.HealPhase = *partPh + 1
			}
			spec.Faults.Partitions = []workload.PartitionSpec{ps}
			spec.Name += "-partitioned"
		}
	}
	if *traceOn || *traceOut != "" {
		spec.Trace = &workload.TraceSpec{Enabled: true, SampleRate: *traceRate}
	}
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}

	if *printSpec {
		if err := spec.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		return
	}

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}
	var tel *workload.Telemetry
	if *httpAddr != "" {
		tel = workload.NewTelemetry()
		srv, err := telemetry.Start(*httpAddr, tel.Options())
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry listening on http://%s\n", srv.Addr())
	}
	rep, err := workload.RunLive(spec, progress, tel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	rep.WriteSummary(os.Stdout)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		if err := trace.WriteChromeTrace(f, rep.TraceEvents); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d events; load at https://ui.perfetto.dev)\n",
			*traceOut, len(rep.TraceEvents))
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *outPath)
	}

	if !rep.Heap.Safe() {
		fmt.Fprintf(os.Stderr, "loadgen: SAFETY VIOLATION: %d use-after-free loads, %d use-after-free stores, %d double frees\n",
			rep.Heap.UAFLoads, rep.Heap.UAFStores, rep.Heap.UAFFrees)
		os.Exit(1)
	}
	// A crash plan that asked for failover on every crash must report
	// recovery; a deliberately-wedged (no-failover) crash is allowed to
	// stay unrecovered.
	wantRecover := len(spec.Faults.Crashes) > 0
	for _, cr := range spec.Faults.Crashes {
		if !cr.Failover {
			wantRecover = false
		}
	}
	if a := rep.Availability; a != nil && wantRecover && !a.Recovered {
		fmt.Fprintln(os.Stderr, "loadgen: AVAILABILITY VIOLATION: crash failover did not recover")
		os.Exit(1)
	}
	// A partitioned run without crashes must settle the retry ledgers
	// and keep the fail-stop ledger empty — a partition is transient,
	// not a loss.
	if a := rep.Availability; a != nil && len(spec.Faults.Partitions) > 0 && len(spec.Faults.Crashes) == 0 {
		if !a.RetryBalanced() {
			fmt.Fprintf(os.Stderr, "loadgen: RETRY VIOLATION: parked=%d != redelivered=%d + expired=%d\n",
				a.OpsParked, a.OpsRedelivered, a.OpsExpired)
			os.Exit(1)
		}
		if a.OpsLost != 0 {
			fmt.Fprintf(os.Stderr, "loadgen: RETRY VIOLATION: partition leaked %d ops into the fail-stop ledger\n", a.OpsLost)
			os.Exit(1)
		}
	}
}

// flagSpec assembles the default three-phase scenario from flags.
func flagSpec(structure string, locales, tasks int, backend string, seed, keyspace uint64,
	dist string, theta float64, ops, bulkSize int, rate, latScale float64,
	slowLoc int, slowFac float64) workload.Spec {

	s := workload.Structure(structure)
	var load, run workload.Mix
	switch s {
	case workload.StructureQueue, workload.StructureStack:
		load = workload.Mix{Enqueue: 1}
		run = workload.Mix{Enqueue: 4, Remove: 3, Steal: 0.5, Bulk: 0.02}
	default: // hashmap, skiplist (and unknown, which Validate rejects)
		load = workload.Mix{Insert: 1}
		run = workload.Mix{Insert: 2, Get: 6, Remove: 1}
		if s == workload.StructureHashmap {
			run.Bulk = 0.02
		}
	}
	return workload.Spec{
		Name:           fmt.Sprintf("%s-%s", structure, dist),
		Structure:      s,
		Locales:        locales,
		TasksPerLocale: tasks,
		Backend:        backend,
		Seed:           seed,
		Keyspace:       keyspace,
		Dist:           workload.KeyDist{Kind: workload.DistKind(dist), Theta: thetaFor(dist, theta)},
		LatencyScale:   latScale,
		Faults:         workload.Faults{SlowLocale: slowLoc, SlowFactor: slowFac},
		Phases: []workload.Phase{
			{Name: "load", Mix: load, OpsPerTask: max(ops/2, 1), TargetRate: rate},
			{Name: "run", Mix: run, OpsPerTask: ops, BulkSize: bulkSize, TargetRate: rate, ReclaimEvery: 512},
			{Name: "churn", Mix: run, OpsPerTask: max(ops/4, 1), Rounds: 3, Churn: true, BulkSize: bulkSize, TargetRate: rate},
		},
	}
}

// thetaFor passes theta through for zipfian and zeroes it otherwise,
// so non-zipfian specs don't fail validation on an irrelevant knob.
func thetaFor(dist string, theta float64) float64 {
	if dist == string(workload.DistZipfian) {
		return theta
	}
	return 0
}
