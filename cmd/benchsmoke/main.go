// Command benchsmoke runs the measurement-plane hot-path benchmarks —
// the exact bodies behind BenchmarkDispatchHotPath and
// BenchmarkHeapLoadParallel, shared via internal/bench/hotpath — with
// testing.Benchmark and writes a machine-readable JSON record: the
// perf-trajectory artifact CI uploads as BENCH_5.json, so regressions
// of the harness itself are visible across PRs.
//
// With -absorption it instead runs the BENCH_6 write-absorption pair —
// WriteStormHotKey with in-flight combining off (baseline) and on
// (current) — and writes the comparative BENCH_6.json shape with a
// per-benchmark speedup map.
//
// With -rebalance it runs the BENCH_7 moving-hot-set pair —
// MovingHotStorm with ownership static (baseline) and dynamically
// rebalanced (current) — each arm measured twice: serial (GOMAXPROCS
// pinned to 1) and, when the host has more than one CPU, parallel
// (GOMAXPROCS at the CPU count), so the record carries both the
// per-op overhead and the contended point.
//
// With -trace it runs the BENCH_8 tracing-overhead pairs — the
// dispatch storm untraced (baseline) against the same storm with a
// recorder attached idle and attached sampling at 1/64 (current) — and
// writes the comparative BENCH_8.json shape.
//
// Usage:
//
//	benchsmoke [-absorption | -rebalance | -trace] [-out FILE] [-benchtime D] [-label S]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"gopgas/internal/bench/hotpath"
)

// Result is one benchmark's record.
type Result struct {
	Name      string  `json:"name"`
	Locales   int     `json:"locales"`
	N         int     `json:"n"`
	NSPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	AllocsOp  float64 `json:"allocs_per_op"`
	BytesOp   float64 `json:"bytes_per_op"`
}

// Report is the BENCH_5.json shape: the perf-trajectory point for this
// PR's hot paths. GOMAXPROCS matters when comparing records: RunParallel
// uses that many worker goroutines, so a single-core container measures
// serial per-op overhead, not cross-core cache-line contention.
type Report struct {
	Label      string   `json:"label,omitempty"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Results    []Result `json:"results"`
}

// Environment pins the toolchain facts a comparative record needs.
type Environment struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CompareReport is the BENCH_6.json shape: two arms of the same
// workload measured in one process, plus the per-benchmark wall-clock
// speedup of current over baseline.
type CompareReport struct {
	PR          int                `json:"pr"`
	Title       string             `json:"title"`
	Note        string             `json:"note"`
	Environment Environment        `json:"environment"`
	Baseline    Report             `json:"baseline"`
	Current     Report             `json:"current"`
	Speedup     map[string]float64 `json:"speedup"`
}

// namedBench pairs a benchmark body with its report name.
type namedBench struct {
	name string
	fn   func(*testing.B)
}

// withProcs pins GOMAXPROCS around a benchmark body: RunParallel uses
// GOMAXPROCS workers, so the same body measures serial per-op overhead
// at 1 and cross-core contention at the CPU count.
func withProcs(n int, fn func(*testing.B)) func(*testing.B) {
	return func(b *testing.B) {
		old := runtime.GOMAXPROCS(n)
		defer runtime.GOMAXPROCS(old)
		fn(b)
	}
}

// procPoints expands one benchmark body into its serial point and —
// when the host has more than one CPU — its parallel point, named
// uniquely so the speedup map keys never collide.
func procPoints(name string, fn func(*testing.B)) []namedBench {
	out := []namedBench{{name + "/serial", withProcs(1, fn)}}
	if n := runtime.NumCPU(); n > 1 {
		out = append(out, namedBench{name + "/parallel", withProcs(n, fn)})
	}
	return out
}

// run measures each benchmark and returns its records, echoing a
// progress line per benchmark to stderr.
func run(tag string, benches []namedBench) []Result {
	var out []Result
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		nsOp := float64(r.T.Nanoseconds()) / float64(r.N)
		res := Result{
			Name:      bench.name,
			Locales:   hotpath.Locales,
			N:         r.N,
			NSPerOp:   nsOp,
			OpsPerSec: 1e9 / nsOp,
			AllocsOp:  float64(r.AllocsPerOp()),
			BytesOp:   float64(r.AllocedBytesPerOp()),
		}
		out = append(out, res)
		fmt.Fprintf(os.Stderr, "%-12s %-18s N=%-9d %10.1f ns/op %14.0f ops/s %6.1f allocs/op\n",
			tag, res.Name, res.N, res.NSPerOp, res.OpsPerSec, res.AllocsOp)
	}
	return out
}

func main() {
	var (
		out        = flag.String("out", "", "write JSON here (default stdout)")
		benchtime  = flag.Duration("benchtime", time.Second, "per-benchmark target duration")
		label      = flag.String("label", "", "free-form label recorded in the report")
		absorption = flag.Bool("absorption", false, "run the BENCH_6 write-absorption pair and emit the comparative shape")
		rebalanceF = flag.Bool("rebalance", false, "run the BENCH_7 moving-hot-set pair and emit the comparative shape")
		traceF     = flag.Bool("trace", false, "run the BENCH_8 tracing-overhead pairs and emit the comparative shape")
	)
	flag.Parse()
	if *benchtime <= 0 {
		fmt.Fprintf(os.Stderr, "benchsmoke: -benchtime must be > 0, got %v\n", *benchtime)
		os.Exit(2)
	}
	modes := 0
	for _, on := range []bool{*absorption, *rebalanceF, *traceF} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "benchsmoke: -absorption, -rebalance and -trace are mutually exclusive")
		os.Exit(2)
	}
	// testing.Benchmark honours the package-level benchtime flag that
	// testing.Init registers.
	testing.Init()
	if err := flag.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
		fmt.Fprintf(os.Stderr, "benchsmoke: %v\n", err)
		os.Exit(1)
	}

	env := Environment{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	var record any
	if *traceF {
		baseline := Report{
			Label: "untraced", GoVersion: env.GoVersion, GOMAXPROCS: env.GOMAXPROCS,
			Results: run("untraced", []namedBench{
				{"DispatchHotPath/idle", hotpath.DispatchHotPath},
				{"DispatchHotPath/sampled", hotpath.DispatchHotPath},
			}),
		}
		current := Report{
			Label: "traced", GoVersion: env.GoVersion, GOMAXPROCS: env.GOMAXPROCS,
			Results: run("traced", []namedBench{
				{"DispatchHotPath/idle", hotpath.DispatchHotPathTracerIdle},
				{"DispatchHotPath/sampled", hotpath.DispatchHotPathTraced},
			}),
		}
		if *label != "" {
			current.Label = *label
		}
		speedup := make(map[string]float64, len(baseline.Results))
		for i, b := range baseline.Results {
			speedup[b.Name] = math.Round(100*b.NSPerOp/current.Results[i].NSPerOp) / 100
		}
		record = CompareReport{
			PR:    8,
			Title: "Event-tracing plane + live HTTP telemetry",
			Note: "Synchronous remote on-statement storm at 8 locales, zero latency profile — the BENCH_5 dispatch " +
				"body — measured untraced (baseline, no recorder attached: one nil check) against two traced arms: " +
				"idle (a recorder attached with recording disabled, paying one inlined atomic flag load — the cost a " +
				"soak server carries while nobody is tracing, expected at parity) and sampled (recording enabled at " +
				"the 1-in-64 default, where a sampled-out dispatch pays one atomic tick and a sampled-in one writes " +
				"two fixed-size events into the per-locale lock-free ring). The rings are never drained mid-run, so " +
				"the sampled arm's steady state includes the wrap-around drop path — the recorder drops and counts " +
				"rather than block, and every arm stays at 0 allocs/op. Speedup below 1 is the overhead ratio. " +
				"Measured with cmd/benchsmoke -trace (testing.Benchmark over internal/bench/hotpath, the same bodies " +
				"as BenchmarkDispatchHotPath{,TracerIdle,Traced}). CI regenerates this record fresh on every run and " +
				"uploads it as the BENCH_8.json artifact.",
			Environment: env,
			Baseline:    baseline,
			Current:     current,
			Speedup:     speedup,
		}
	} else if *rebalanceF {
		baseline := Report{
			Label: "static", GoVersion: env.GoVersion, GOMAXPROCS: env.GOMAXPROCS,
			Results: run("static", procPoints("MovingHotStorm", hotpath.MovingHotStormStatic)),
		}
		current := Report{
			Label: "rebalanced", GoVersion: env.GoVersion, GOMAXPROCS: env.GOMAXPROCS,
			Results: run("rebalanced", procPoints("MovingHotStorm", hotpath.MovingHotStormRebalanced)),
		}
		if *label != "" {
			current.Label = *label
		}
		speedup := make(map[string]float64, len(baseline.Results))
		for i, b := range baseline.Results {
			speedup[b.Name] = math.Round(100*b.NSPerOp/current.Results[i].NSPerOp) / 100
		}
		record = CompareReport{
			PR:    7,
			Title: "Dynamic hot-shard rebalancing with epoch-coherent ownership migration",
			Note: "Moving-hot-set upsert storm at 8 locales, zero latency profile, plain aggregated path (no " +
				"in-flight absorption — that is BENCH_6's subject): each writer hammers one hot key homed on locale 0 " +
				"through the owner-table-routed view, and the hot set jumps to fresh buckets every 2048 writes. The " +
				"baseline arm leaves ownership static, so every window ships to locale 0 and replays behind its " +
				"combiner; the current arm steps a rebalance.Controller every 512 writes, which migrates each window's " +
				"hot buckets to their writers through the epoch-coherent handoff, turning the steady-state write " +
				"local. Each arm is measured serial (GOMAXPROCS=1) and, when the host allows, parallel " +
				"(GOMAXPROCS=NumCPU). The serial point is an overhead check and lands near parity by construction: " +
				"under zero injected latency the local apply (epoch pin + combiner + list write) costs about as much " +
				"as the enqueue+ship+replay it replaces, so rebalancing is roughly free serially even while it cuts " +
				"the shipped-op count ~20x. The wins rebalancing exists for are the bounded busiest-inbound column " +
				"(ablation A10, loadgen maxInbound) and the parallel point, where the static arm serializes every " +
				"writer behind locale 0's combiner. Measured with cmd/benchsmoke -rebalance (testing.Benchmark over " +
				"internal/bench/hotpath, the same bodies as BenchmarkMovingHotStorm{Static,Rebalanced}). CI " +
				"regenerates this record fresh on every run and uploads it as the BENCH_7.json artifact.",
			Environment: env,
			Baseline:    baseline,
			Current:     current,
			Speedup:     speedup,
		}
	} else if *absorption {
		baseline := Report{
			Label: "uncombined", GoVersion: env.GoVersion, GOMAXPROCS: env.GOMAXPROCS,
			Results: run("uncombined", []namedBench{{"WriteStormHotKey", hotpath.WriteStormHotKeyUncombined}}),
		}
		current := Report{
			Label: "combined", GoVersion: env.GoVersion, GOMAXPROCS: env.GOMAXPROCS,
			Results: run("combined", []namedBench{{"WriteStormHotKey", hotpath.WriteStormHotKeyCombined}}),
		}
		if *label != "" {
			current.Label = *label
		}
		speedup := make(map[string]float64, len(baseline.Results))
		for i, b := range baseline.Results {
			speedup[b.Name] = math.Round(100*b.NSPerOp/current.Results[i].NSPerOp) / 100
		}
		record = CompareReport{
			PR:    6,
			Title: "Write absorption: mergeable aggregated ops + owner-side flat combining",
			Note: "Aggregated hot-key upsert storm at 8 locales, zero latency profile, 64-write flush windows over " +
				"8 hot keys homed on locale 0. The baseline arm ships every enqueued write; the current arm absorbs " +
				"repeat writes to a key in flight, so each window ships at most the hot-key count. Both arms drain " +
				"through the owner's flat combiner. Measured with cmd/benchsmoke -absorption (testing.Benchmark over " +
				"internal/bench/hotpath, the same bodies as BenchmarkWriteStormHotKey{Uncombined,Combined}). CI " +
				"regenerates this record fresh on every run and uploads it as the BENCH_6.json artifact.",
			Environment: env,
			Baseline:    baseline,
			Current:     current,
			Speedup:     speedup,
		}
	} else {
		record = Report{
			Label: *label, GoVersion: env.GoVersion, GOMAXPROCS: env.GOMAXPROCS,
			Results: run("hotpath", []namedBench{
				{"DispatchHotPath", hotpath.DispatchHotPath},
				{"HeapLoadParallel", hotpath.HeapLoadParallel},
			}),
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsmoke: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "benchsmoke: %v\n", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(record); err != nil {
		fmt.Fprintf(os.Stderr, "benchsmoke: %v\n", err)
		os.Exit(1)
	}
}
