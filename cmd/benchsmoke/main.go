// Command benchsmoke runs the measurement-plane hot-path benchmarks —
// the exact bodies behind BenchmarkDispatchHotPath and
// BenchmarkHeapLoadParallel, shared via internal/bench/hotpath — with
// testing.Benchmark and writes a machine-readable JSON record: the
// perf-trajectory artifact CI uploads as BENCH_5.json, so regressions
// of the harness itself are visible across PRs.
//
// Usage:
//
//	benchsmoke [-out FILE] [-benchtime D] [-label S]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"gopgas/internal/bench/hotpath"
)

// Result is one benchmark's record.
type Result struct {
	Name      string  `json:"name"`
	Locales   int     `json:"locales"`
	N         int     `json:"n"`
	NSPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	AllocsOp  float64 `json:"allocs_per_op"`
	BytesOp   float64 `json:"bytes_per_op"`
}

// Report is the BENCH_5.json shape: the perf-trajectory point for this
// PR's hot paths. GOMAXPROCS matters when comparing records: RunParallel
// uses that many worker goroutines, so a single-core container measures
// serial per-op overhead, not cross-core cache-line contention.
type Report struct {
	Label      string   `json:"label,omitempty"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Results    []Result `json:"results"`
}

func main() {
	var (
		out       = flag.String("out", "", "write JSON here (default stdout)")
		benchtime = flag.Duration("benchtime", time.Second, "per-benchmark target duration")
		label     = flag.String("label", "", "free-form label recorded in the report")
	)
	flag.Parse()
	if *benchtime <= 0 {
		fmt.Fprintf(os.Stderr, "benchsmoke: -benchtime must be > 0, got %v\n", *benchtime)
		os.Exit(2)
	}
	// testing.Benchmark honours the package-level benchtime flag that
	// testing.Init registers.
	testing.Init()
	if err := flag.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
		fmt.Fprintf(os.Stderr, "benchsmoke: %v\n", err)
		os.Exit(1)
	}

	rep := Report{
		Label:      *label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, bench := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"DispatchHotPath", hotpath.DispatchHotPath},
		{"HeapLoadParallel", hotpath.HeapLoadParallel},
	} {
		r := testing.Benchmark(bench.fn)
		nsOp := float64(r.T.Nanoseconds()) / float64(r.N)
		res := Result{
			Name:      bench.name,
			Locales:   hotpath.Locales,
			N:         r.N,
			NSPerOp:   nsOp,
			OpsPerSec: 1e9 / nsOp,
			AllocsOp:  float64(r.AllocsPerOp()),
			BytesOp:   float64(r.AllocedBytesPerOp()),
		}
		rep.Results = append(rep.Results, res)
		fmt.Fprintf(os.Stderr, "%-18s N=%-9d %10.1f ns/op %14.0f ops/s %6.1f allocs/op\n",
			res.Name, res.N, res.NSPerOp, res.OpsPerSec, res.AllocsOp)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsmoke: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "benchsmoke: %v\n", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchsmoke: %v\n", err)
		os.Exit(1)
	}
}
