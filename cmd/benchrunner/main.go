// Command benchrunner regenerates the paper's evaluation figures
// (Figures 3–7) and the ablation studies on the simulated PGAS system.
//
// Usage:
//
//	benchrunner [-figure 3|4|5|6|7|ablations|all] [-scale F]
//	            [-tasks N] [-maxlocales N] [-csv FILE] [-matrix FILE]
//	            [-cpuprofile FILE] [-comm] [-quiet]
//
// Output is gnuplot-style text on stdout (seconds per sweep point);
// -comm adds the communication-volume view; -csv additionally writes
// the long-form machine-readable record with both metrics; -matrix
// writes the locale-pair heatmap CSV (src,dst,events per sweep point)
// for the figures that capture it (the sharding ablation A7);
// -cpuprofile writes a pprof CPU profile covering the sweeps, for
// profiling the harness itself (the measurement plane's hot paths).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"

	"gopgas/internal/bench"
)

func main() {
	os.Exit(run())
}

// run carries the whole command; it returns the exit code instead of
// calling os.Exit so the deferred -cpuprofile stop/flush always runs,
// even when a later output file fails to write.
func run() (code int) {
	var (
		figure     = flag.String("figure", "all", "which figure to run: 3,4,5,6,7,ablations,all")
		scale      = flag.Float64("scale", 1.0, "operation-count multiplier")
		tasks      = flag.Int("tasks", 2, "tasks per locale in distributed loops")
		maxLocales = flag.Int("maxlocales", 64, "largest locale count in sweeps")
		maxTasks   = flag.Int("maxtasks", 32, "largest task count in the shared-memory sweep")
		csvPath    = flag.String("csv", "", "also write long-form CSV to this file")
		matrixPath = flag.String("matrix", "", "also write the locale-pair heatmap CSV to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweeps to this file")
		commView   = flag.Bool("comm", false, "also print communication-volume tables")
		quiet      = flag.Bool("quiet", false, "suppress per-run progress lines")
	)
	flag.Parse()

	// Validate before any sweep runs: a typo'd figure or a nonsense
	// scale must fail fast and non-zero, not silently run nothing.
	if strings.HasPrefix(*figure, "abl") {
		*figure = "ablations"
	}
	switch *figure {
	case "3", "4", "5", "6", "7", "ablations", "all":
	default:
		fmt.Fprintf(os.Stderr, "benchrunner: unknown -figure %q (want 3|4|5|6|7|ablations|all)\n", *figure)
		return 2
	}
	if *scale <= 0 {
		fmt.Fprintf(os.Stderr, "benchrunner: -scale must be > 0, got %v\n", *scale)
		return 2
	}
	for _, check := range []struct {
		flag string
		val  int
	}{
		{"-tasks", *tasks},
		{"-maxlocales", *maxLocales},
		{"-maxtasks", *maxTasks},
	} {
		if check.val <= 0 {
			fmt.Fprintf(os.Stderr, "benchrunner: %s must be > 0, got %d\n", check.flag, check.val)
			fmt.Fprintf(os.Stderr, "usage: benchrunner [-figure 3|4|5|6|7|ablations|all] [-scale F] [-tasks N] [-maxlocales N] [-maxtasks N] [-csv FILE] [-matrix FILE] [-cpuprofile FILE] [-comm] [-quiet]\n")
			return 2
		}
	}

	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	cfg.TasksPerLocale = *tasks
	cfg.MaxLocales = *maxLocales
	cfg.MaxSharedTasks = *maxTasks
	if !*quiet {
		cfg.Progress = os.Stderr
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
				code = 1
				return
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *cpuProfile)
		}()
	}

	var figures []bench.Figure
	run := func(id string, fn func(bench.Config) bench.Figure) {
		if *figure == "all" || *figure == id {
			figures = append(figures, fn(cfg))
		}
	}
	run("3", bench.Figure3)
	run("4", bench.Figure4)
	run("5", bench.Figure5)
	run("6", bench.Figure6)
	run("7", bench.Figure7)
	if *figure == "all" || *figure == "ablations" {
		figures = append(figures, bench.Ablations(cfg)...)
	}

	for _, f := range figures {
		bench.WriteText(os.Stdout, f)
		if *commView {
			bench.WriteCommText(os.Stdout, f)
		}
	}

	if *csvPath != "" {
		var w io.WriteCloser
		w, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			return 1
		}
		for _, f := range figures {
			bench.WriteCSV(w, f)
		}
		if err := w.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}

	if *matrixPath != "" {
		w, err := os.Create(*matrixPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			return 1
		}
		rows := bench.WriteMatrixCSV(w, figures)
		if err := w.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			return 1
		}
		if rows == 0 {
			fmt.Fprintf(os.Stderr, "benchrunner: no selected figure captures a comm matrix (run -figure ablations); %s is empty\n", *matrixPath)
		} else {
			fmt.Fprintf(os.Stderr, "wrote %s (%d rows)\n", *matrixPath, rows)
		}
	}
	return 0
}
