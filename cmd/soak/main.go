// Command soak stress-tests every structure in the library at once on
// one simulated system: Treiber stack, Michael–Scott queue, Harris
// list, hash map and RCU array all churn concurrently, sharing a
// single EpochManager, while an invariant checker watches for
// use-after-free, double free, counter drift, and leaks.
//
// This is the long-running confidence run a downstream adopter would
// want before deploying: `go run ./cmd/soak -seconds 30 -locales 8`.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
	"gopgas/internal/structures/hashmap"
	"gopgas/internal/structures/list"
	"gopgas/internal/structures/queue"
	"gopgas/internal/structures/rcuarray"
	"gopgas/internal/structures/skiplist"
	"gopgas/internal/structures/stack"
)

func main() {
	locales := flag.Int("locales", 8, "number of simulated locales")
	seconds := flag.Float64("seconds", 10, "soak duration")
	tasks := flag.Int("tasks", 2, "worker tasks per locale")
	backendName := flag.String("backend", "ugni", "network-atomic backend: ugni or none")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	backend, err := comm.ParseBackend(*backendName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	sys := pgas.NewSystem(pgas.Config{
		Locales: *locales,
		Backend: backend,
		Latency: comm.DefaultProfile(),
		Seed:    *seed,
	})
	defer sys.Shutdown()
	c0 := sys.Ctx(0)

	em := epoch.NewEpochManager(c0)
	st := stack.New[int](c0, 0, em)
	q := queue.New[int](c0, 1%*locales, em)
	l := list.New[int](c0, 2%*locales, em)
	m := hashmap.New[int](c0, 64, em)
	arr := rcuarray.New[int](c0, 3%*locales, 16, em)
	sl := skiplist.New[int](c0, 4%*locales, em)
	boot := em.Register(c0)
	arr.Resize(c0, boot, 256)
	boot.Unregister(c0)

	fmt.Printf("soak: %d locales × %d tasks, backend=%v, %.0fs\n", *locales, *tasks, backend, *seconds)
	deadline := time.Now().Add(time.Duration(*seconds * float64(time.Second)))
	var ops atomic.Int64
	var stackBalance, queueBalance atomic.Int64
	var wg sync.WaitGroup
	for loc := 0; loc < *locales; loc++ {
		for t := 0; t < *tasks; t++ {
			wg.Add(1)
			go func(loc int) {
				defer wg.Done()
				c := sys.Ctx(loc)
				tok := em.Register(c)
				defer tok.Unregister(c)
				for time.Now().Before(deadline) {
					for burst := 0; burst < 64; burst++ {
						k := c.RandUint64() % 512
						switch c.RandIntn(15) {
						case 0:
							st.Push(c, tok, int(k))
							stackBalance.Add(1)
						case 1:
							if _, ok := st.Pop(c, tok); ok {
								stackBalance.Add(-1)
							}
						case 2:
							q.Enqueue(c, tok, int(k))
							queueBalance.Add(1)
						case 3:
							if _, ok := q.Dequeue(c, tok); ok {
								queueBalance.Add(-1)
							}
						case 4:
							l.Insert(c, tok, k%128, int(k))
						case 5:
							l.Remove(c, tok, k%128)
						case 6:
							l.Contains(c, tok, k%128)
						case 7:
							m.Upsert(c, tok, k, int(k))
						case 8:
							m.Remove(c, tok, k)
						case 9:
							m.Get(c, tok, k)
						case 10:
							arr.Read(c, tok, int(k%256))
						case 11:
							arr.Write(c, tok, int(k%256), int(k))
						case 12:
							sl.Insert(c, tok, k%192, int(k))
						case 13:
							sl.Remove(c, tok, k%192)
						default:
							sl.Contains(c, tok, k%192)
						}
						ops.Add(1)
					}
					if c.RandIntn(16) == 0 {
						tok.TryReclaim(c)
					}
				}
			}(loc)
		}
	}
	wg.Wait()
	em.Clear(c0)

	heap := sys.HeapStats()
	mgr := em.Stats(c0)
	fmt.Printf("ops:   %d (%.0f ops/s)\n", ops.Load(), float64(ops.Load())/(*seconds))
	fmt.Printf("epoch: deferred=%d reclaimed=%d advances=%d backoffs=%d/%d blocked=%d\n",
		mgr.Deferred, mgr.Reclaimed, mgr.Advances, mgr.LocalBackoff, mgr.GlobalBackoff, mgr.AdvanceFail)
	fmt.Printf("heap:  %v\n", heap)
	fmt.Printf("comm:  %v\n", sys.Counters().Snapshot())

	failures := 0
	check := func(name string, ok bool, detail string) {
		if ok {
			fmt.Printf("PASS  %s\n", name)
		} else {
			fmt.Printf("FAIL  %s: %s\n", name, detail)
			failures++
		}
	}
	check("no use-after-free", heap.UAFLoads == 0, fmt.Sprintf("%d poisoned loads", heap.UAFLoads))
	check("no double free", heap.UAFFrees == 0, fmt.Sprintf("%d double frees", heap.UAFFrees))
	check("all deferred reclaimed", mgr.Reclaimed == mgr.Deferred,
		fmt.Sprintf("reclaimed %d of %d", mgr.Reclaimed, mgr.Deferred))
	tok := em.Register(c0)
	check("stack balance", int64(st.Len(c0, tok)) == stackBalance.Load(),
		fmt.Sprintf("len %d vs balance %d", st.Len(c0, tok), stackBalance.Load()))
	check("queue balance", int64(q.Len(c0, tok)) == queueBalance.Load(),
		fmt.Sprintf("len %d vs balance %d", q.Len(c0, tok), queueBalance.Load()))
	check("array intact", arr.Len(c0, tok) == 256, "length drifted")
	slN := sl.Len(c0, tok)
	slCount := 0
	for k := uint64(0); k < 192; k++ {
		if sl.Contains(c0, tok, k) {
			slCount++
		}
	}
	check("skiplist consistent", slN == slCount,
		fmt.Sprintf("Len=%d vs Contains sweep=%d", slN, slCount))
	tok.Unregister(c0)
	if failures > 0 {
		fmt.Printf("%d invariant(s) violated\n", failures)
		os.Exit(1)
	}
	fmt.Println("all invariants held")
}
