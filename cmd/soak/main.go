// Command soak is the long-running confidence run, rebuilt on the
// workload scenario engine: every structure in turn is churned under a
// time-based mixed-op scenario — Zipfian keys, work stealing and bulk
// routing where supported, in-phase epoch reclamation, and
// destroy/recreate churn rounds — while the gas heaps watch for
// use-after-free and double free. A clean exit is the assertion a
// downstream adopter wants before deploying:
//
//	go run ./cmd/soak -seconds 30 -locales 8
//
// -structure limits the soak to one target; -slow-factor adds the
// slow-locale fault plan on top. -crash kills the top locale midway
// through the hashmap scenario's steady phase and fails over — the
// survivors adopt its shards and force-retire its stranded epoch
// tokens — turning the soak into an availability drill: the summary
// gains a PASS/FAIL recovery verdict beside the safety ones (crash
// failover now covers the hashmap, sharded queue and sharded stack;
// the skiplist soaks unperturbed). -partition severs the pair (1,2)
// mid-steady-phase of every scenario and heals it 50ms later — the
// transient-fault drill: the summary gains a PASS/FAIL verdict that
// every sever healed, the retry ledgers settled (parked ==
// redelivered + expired), and (crash-free) nothing leaked into the
// fail-stop ledger.
// -http starts the live telemetry and
// control server for the whole soak — the server outlives scenario
// boundaries, re-attaching to each structure's run in turn, so an
// operator can watch /api/status and /api/matrix, pull live
// /api/trace windows (with -trace), profile via /debug/pprof, and
// inject latency faults into whichever scenario is running with POST
// /api/fault. -trace additionally records the event-tracing plane at
// 1/64 sampling and prints each run's span books in the summary. Exit
// status 1 means an invariant was violated.
//
// The engine covers the four scenario targets (hashmap, sharded
// queue/stack, skiplist); rcuarray and the bare Harris list keep
// their dedicated stress coverage in their packages' property and
// destroy/churn tests.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gopgas/internal/telemetry"
	"gopgas/internal/workload"
)

func main() {
	var (
		locales   = flag.Int("locales", 8, "number of simulated locales")
		seconds   = flag.Float64("seconds", 10, "soak duration (split across structures)")
		tasks     = flag.Int("tasks", 2, "worker tasks per locale")
		backend   = flag.String("backend", "ugni", "network-atomic backend: ugni or none")
		seed      = flag.Uint64("seed", 1, "workload seed")
		structure = flag.String("structure", "", "soak only this structure (default: all)")
		slowFac   = flag.Float64("slow-factor", 0, "also inject a slow locale 0 by this factor (0 = off)")
		crash     = flag.Bool("crash", false, "crash the top locale mid-steady-phase of the hashmap scenario and fail over (availability drill)")
		partition = flag.Bool("partition", false, "sever the pair (1,2) mid-steady-phase of every scenario and heal it 50ms later (transient-fault drill)")
		traceOn   = flag.Bool("trace", false, "record the event-tracing plane (1/64 sampling) during each scenario")
		httpAddr  = flag.String("http", "", "serve live telemetry + control on this address (e.g. :8077) for the whole soak")
	)
	flag.Parse()

	targets := workload.Structures()
	if *structure != "" {
		targets = []workload.Structure{workload.Structure(*structure)}
	}
	perStructure := *seconds / float64(len(targets))

	var tel *workload.Telemetry
	if *httpAddr != "" {
		tel = workload.NewTelemetry()
		srv, err := telemetry.Start(*httpAddr, tel.Options())
		if err != nil {
			fmt.Fprintln(os.Stderr, "soak:", err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Printf("telemetry listening on http://%s\n", srv.Addr())
	}

	failures := 0
	var totalOps int64
	for _, s := range targets {
		spec := soakSpec(s, *locales, *tasks, *backend, *seed, perStructure, *slowFac)
		if *crash && s == workload.StructureHashmap {
			spec.Faults.Crashes = []workload.CrashSpec{{
				Locale: *locales - 1, Phase: 0, AfterOps: 2048, Failover: true,
			}}
		}
		if *partition {
			spec.Faults.Partitions = []workload.PartitionSpec{{
				A: 1, B: 2, Phase: 0, AtOps: 1024, HealAfterMS: 50,
			}}
		}
		if *traceOn {
			spec.Trace = &workload.TraceSpec{Enabled: true}
		}
		rep, err := workload.RunLive(spec, nil, tel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "soak:", err)
			os.Exit(2)
		}
		rep.WriteSummary(os.Stdout)
		totalOps += rep.TotalOps
		if rep.Heap.Safe() {
			fmt.Printf("PASS  %s: no use-after-free, no double free\n", s)
		} else {
			fmt.Printf("FAIL  %s: %d poisoned loads, %d poisoned stores, %d double frees\n", s, rep.Heap.UAFLoads, rep.Heap.UAFStores, rep.Heap.UAFFrees)
			failures++
		}
		if rep.Epoch.Balanced() {
			fmt.Printf("PASS  %s: all deferred reclaimed (%d)\n", s, rep.Epoch.Deferred)
		} else {
			fmt.Printf("FAIL  %s: reclaimed %d of %d deferred\n", s, rep.Epoch.Reclaimed, rep.Epoch.Deferred)
			failures++
		}
		if a := rep.Availability; a != nil {
			if a.Crashes > 0 {
				if a.Recovered {
					fmt.Printf("PASS  %s: recovered from %d crash(es): opsLost=%d shardsAdopted=%d tokensForceRetired=%d\n",
						s, a.Crashes, a.OpsLost, a.ShardsAdopted, a.TokensForceRetired)
				} else {
					fmt.Printf("FAIL  %s: crash failover did not recover (%d crash(es), opsLost=%d)\n", s, a.Crashes, a.OpsLost)
					failures++
				}
			}
			if a.Partitions > 0 {
				// Partitions are transient: every sever must have healed and
				// the retry ledgers must settle. Only a crash-free drill can
				// demand an empty fail-stop ledger.
				ok := a.Heals == a.Partitions && a.RetryBalanced() && (a.Crashes > 0 || a.OpsLost == 0)
				if ok {
					fmt.Printf("PASS  %s: %d partition(s) healed in %v: parked=%d redelivered=%d expired=%d\n",
						s, a.Partitions, time.Duration(a.TimeToHealNS), a.OpsParked, a.OpsRedelivered, a.OpsExpired)
				} else {
					fmt.Printf("FAIL  %s: partition drill: %d sever(s) %d heal(s), parked=%d redelivered=%d expired=%d opsLost=%d\n",
						s, a.Partitions, a.Heals, a.OpsParked, a.OpsRedelivered, a.OpsExpired, a.OpsLost)
					failures++
				}
			}
		}
		if rep.Trace != nil {
			if rep.Trace.Balanced {
				fmt.Printf("PASS  %s: trace books balanced (%d events, %d dropped)\n", s, rep.Trace.Events, rep.Trace.Dropped)
			} else {
				fmt.Printf("FAIL  %s: trace books unbalanced: %v\n", s, rep.Trace.Spans)
				failures++
			}
		}
	}
	fmt.Printf("soak total: %d ops across %d structures\n", totalOps, len(targets))
	if failures > 0 {
		fmt.Printf("%d invariant(s) violated\n", failures)
		os.Exit(1)
	}
	fmt.Println("all invariants held")
}

// soakSpec builds the churn scenario for one structure: half the time
// in a steady mixed-op phase, half across destroy/recreate churn
// rounds, both with in-phase reclamation.
func soakSpec(s workload.Structure, locales, tasks int, backend string, seed uint64, seconds, slowFac float64) workload.Spec {
	var mix workload.Mix
	switch s {
	case workload.StructureQueue, workload.StructureStack:
		mix = workload.Mix{Enqueue: 5, Remove: 4, Steal: 1, Bulk: 0.05}
	case workload.StructureHashmap:
		mix = workload.Mix{Insert: 3, Get: 4, Remove: 2, Bulk: 0.05}
	default: // skiplist
		mix = workload.Mix{Insert: 3, Get: 4, Remove: 2}
	}
	var faults workload.Faults
	if slowFac > 0 {
		faults = workload.Faults{SlowFactor: slowFac, SlowLocale: 0}
	}
	return workload.Spec{
		Name:           "soak-" + string(s),
		Structure:      s,
		Locales:        locales,
		TasksPerLocale: tasks,
		Backend:        backend,
		Seed:           seed,
		Keyspace:       1 << 12,
		Dist:           workload.KeyDist{Kind: workload.DistZipfian, Theta: 0.99},
		Faults:         faults,
		Phases: []workload.Phase{
			{Name: "steady", Mix: mix, Seconds: seconds / 2, ReclaimEvery: 256},
			{Name: "churn", Mix: mix, Seconds: seconds / 8, Rounds: 4, Churn: true, ReclaimEvery: 256},
		},
	}
}
