package gopgas

// Benchmarks for the non-blocking structures built on the paper's
// primitives, plus the EBR-vs-hazard-pointers reclamation comparison.
// Together with bench_test.go these are the `go test -bench` entry
// points; full sweeps live in cmd/benchrunner.

import (
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/atomics"
	"gopgas/internal/core/epoch"
	"gopgas/internal/core/hazard"
	"gopgas/internal/pgas"
	"gopgas/internal/structures/hashmap"
	"gopgas/internal/structures/queue"
	"gopgas/internal/structures/rcuarray"
	"gopgas/internal/structures/skiplist"
	"gopgas/internal/structures/stack"
)

func BenchmarkStackPushPop(b *testing.B) {
	s := benchSystem(b, 4, comm.BackendUGNI)
	c := s.Ctx(0)
	em := epoch.NewEpochManager(c)
	st := stack.New[int](c, 0, em)
	tok := em.Register(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Push(c, tok, i)
		st.Pop(c, tok)
		if i%256 == 0 {
			tok.TryReclaim(c)
		}
	}
	b.StopTimer()
	tok.Unregister(c)
	em.Clear(c)
}

func BenchmarkQueueEnqDeq(b *testing.B) {
	s := benchSystem(b, 4, comm.BackendUGNI)
	c := s.Ctx(0)
	em := epoch.NewEpochManager(c)
	q := queue.New[int](c, 0, em)
	tok := em.Register(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(c, tok, i)
		q.Dequeue(c, tok)
		if i%256 == 0 {
			tok.TryReclaim(c)
		}
	}
	b.StopTimer()
	tok.Unregister(c)
	em.Clear(c)
}

func BenchmarkHashmapMixed(b *testing.B) {
	s := benchSystem(b, 4, comm.BackendUGNI)
	c := s.Ctx(0)
	em := epoch.NewEpochManager(c)
	m := hashmap.New[int](c, 64, em)
	tok := em.Register(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := c.RandUint64() % 256
		switch c.RandIntn(10) {
		case 0, 1, 2, 3, 4, 5:
			m.Get(c, tok, k)
		case 6, 7, 8:
			m.Upsert(c, tok, k, i)
		default:
			m.Remove(c, tok, k)
		}
		if i%512 == 0 {
			tok.TryReclaim(c)
		}
	}
	b.StopTimer()
	tok.Unregister(c)
	em.Clear(c)
}

func BenchmarkSkiplistMixed(b *testing.B) {
	s := benchSystem(b, 4, comm.BackendUGNI)
	c := s.Ctx(0)
	em := epoch.NewEpochManager(c)
	l := skiplist.New[int](c, 0, em)
	tok := em.Register(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := c.RandUint64() % 256
		switch c.RandIntn(10) {
		case 0, 1, 2, 3, 4, 5:
			l.Contains(c, tok, k)
		case 6, 7, 8:
			l.Insert(c, tok, k, i)
		default:
			l.Remove(c, tok, k)
		}
		if i%512 == 0 {
			tok.TryReclaim(c)
		}
	}
	b.StopTimer()
	tok.Unregister(c)
	em.Clear(c)
}

func BenchmarkRCUArrayRead(b *testing.B) {
	s := benchSystem(b, 4, comm.BackendUGNI)
	c := s.Ctx(0)
	em := epoch.NewEpochManager(c)
	arr := rcuarray.New[int](c, 0, 64, em)
	tok := em.Register(c)
	arr.Resize(c, tok, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arr.Read(c, tok, c.RandIntn(4096))
	}
	b.StopTimer()
	tok.Unregister(c)
	em.Clear(c)
}

func BenchmarkRCUArrayResizeChurn(b *testing.B) {
	s := benchSystem(b, 4, comm.BackendUGNI)
	c := s.Ctx(0)
	em := epoch.NewEpochManager(c)
	arr := rcuarray.New[int](c, 0, 64, em)
	tok := em.Register(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arr.Resize(c, tok, 512+(i%3)*256)
		if i%64 == 0 {
			tok.TryReclaim(c)
		}
	}
	b.StopTimer()
	tok.Unregister(c)
	em.Clear(c)
}

// EBR vs hazard pointers on the identical protected-read path (the
// ablation A5 workload, per-operation view).
func BenchmarkReclamationEBRRead(b *testing.B) {
	s := benchSystem(b, 4, comm.BackendNone)
	c := s.Ctx(1) // reader away from the cell's home
	em := epoch.NewEpochManager(s.Ctx(0))
	cell := atomics.New(s.Ctx(0), 0, atomics.Options{})
	cell.Write(s.Ctx(0), s.Ctx(0).Alloc(&struct{ v int }{}))
	tok := em.Register(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok.Pin(c)
		addr := cell.Read(c)
		pgas.MustDeref[*struct{ v int }](c, addr)
		tok.Unpin(c)
	}
	b.StopTimer()
	tok.Unregister(c)
}

func BenchmarkReclamationHPRead(b *testing.B) {
	s := benchSystem(b, 4, comm.BackendNone)
	c := s.Ctx(1)
	dom := hazard.NewDomain(s.Ctx(0), 64)
	cell := atomics.New(s.Ctx(0), 0, atomics.Options{})
	cell.Write(s.Ctx(0), s.Ctx(0).Alloc(&struct{ v int }{}))
	hp := dom.Acquire(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := hp.Protect(c, cell)
		pgas.MustDeref[*struct{ v int }](c, addr)
		hp.Clear()
	}
	b.StopTimer()
	dom.Release(c, hp)
}

// Distributed variants: operations issued from every locale at once.
func BenchmarkStackMultiLocale(b *testing.B) {
	s := benchSystem(b, 4, comm.BackendUGNI)
	em := epoch.NewEpochManager(s.Ctx(0))
	st := stack.New[int](s.Ctx(0), 0, em)
	b.ResetTimer()
	s.Ctx(0).CoforallLocales(func(lc *pgas.Ctx) {
		tok := em.Register(lc)
		defer tok.Unregister(lc)
		per := b.N / 4
		for i := 0; i < per; i++ {
			st.Push(lc, tok, i)
			st.Pop(lc, tok)
			if i%256 == 0 {
				tok.TryReclaim(lc)
			}
		}
	})
	b.StopTimer()
	em.Clear(s.Ctx(0))
}
