// sensorgrid: a small analytics pipeline over the full substrate. A
// grid of synthetic sensors is stored in a cyclically distributed
// global-view array (dist.Array); every locale normalizes its own
// shard in place with an owner-computes forall (zero element
// communication); per-window aggregates are published into an
// RCU-style resizable array (rcuarray) that concurrent readers scan
// lock-free while windows are appended; and a lock-free skip list
// keeps an ordered index of alarm timestamps.
//
// This is the "global-view programming" picture the paper's
// introduction motivates: shared-memory-style code, distributed
// execution, non-blocking structures, concurrent-safe reclamation.
//
// Run with:
//
//	go run ./examples/sensorgrid [-locales N] [-sensors N] [-windows N]
package main

import (
	"flag"
	"fmt"
	"time"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/dist"
	"gopgas/internal/pgas"
	"gopgas/internal/structures/rcuarray"
	"gopgas/internal/structures/skiplist"
)

type window struct {
	Mean  float64
	Peak  float64
	Alarm bool
}

func main() {
	locales := flag.Int("locales", 4, "number of simulated locales")
	sensors := flag.Int("sensors", 4096, "sensor count")
	windows := flag.Int("windows", 20, "measurement windows")
	flag.Parse()

	sys := pgas.NewSystem(pgas.Config{
		Locales: *locales,
		Backend: comm.BackendUGNI,
		Latency: comm.DefaultProfile(),
		Seed:    7,
	})
	defer sys.Shutdown()
	c0 := sys.Ctx(0)

	em := epoch.NewEpochManager(c0)
	readings := dist.NewCyclic[float64](c0, *sensors)
	history := rcuarray.New[window](c0, 0, 8, em)
	alarms := skiplist.New[window](c0, 0, em)

	start := time.Now()
	alarmCount := 0
	for w := 0; w < *windows; w++ {
		// Sample: each locale fills its own shard (no communication).
		dist.Forall(c0, readings, 2, nil,
			func(tc *pgas.Ctx, _ struct{}, i int, elem *float64) {
				base := float64(i%17) / 17.0
				noise := tc.RandFloat64() * 0.3
				spike := 0.0
				if tc.RandIntn(997) == 0 {
					spike = 2.5
				}
				*elem = base + noise + spike
			}, nil)

		// Aggregate: per-locale partial sums reduced globally.
		var sum pgas.SumReduce
		var peak pgas.MaxReduce
		const scale = 1 << 20 // fixed-point for the int64 reductions
		dist.Forall(c0, readings, 2, nil,
			func(tc *pgas.Ctx, _ struct{}, i int, elem *float64) {
				sum.Add(int64(*elem * scale))
				peak.Add(int64(*elem * scale))
			}, nil)
		pk, _ := peak.Value()
		win := window{
			Mean: float64(sum.Value()) / scale / float64(*sensors),
			Peak: float64(pk) / scale,
		}
		win.Alarm = win.Peak > 2.0

		// Publish: append to the RCU history (structure-safe against
		// concurrent readers) and index alarms in the skip list.
		em.Protect(c0, func(tok *epoch.Token) {
			history.Append(c0, tok, win)
			if win.Alarm {
				alarms.Insert(c0, tok, uint64(w), win)
				alarmCount++
			}
			if w%8 == 0 {
				tok.TryReclaim(c0)
			}
		})
	}

	// Consume: a reader on another locale scans the full history
	// lock-free.
	var meanOfMeans float64
	sys.Ctx(*locales-1).On(*locales-1, func(rc *pgas.Ctx) {
		tok := em.Register(rc)
		defer tok.Unregister(rc)
		n := history.Len(rc, tok)
		for i := 0; i < n; i++ {
			if win, ok := history.Read(rc, tok, i); ok {
				meanOfMeans += win.Mean / float64(n)
			}
		}
	})
	em.Clear(c0)

	fmt.Printf("sensorgrid: %d sensors × %d windows on %d locales in %v\n",
		*sensors, *windows, *locales, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  mean of window means: %.4f (expected ≈ 0.62 = grid mean + noise/2)\n", meanOfMeans)
	tok := em.Register(c0)
	fmt.Printf("  alarms indexed: %d (skiplist len %d)\n", alarmCount, alarms.Len(c0, tok))
	fmt.Printf("  history windows: %d\n", history.Len(c0, tok))
	tok.Unregister(c0)
	st := em.Stats(c0)
	fmt.Printf("  epoch: deferred=%d reclaimed=%d advances=%d\n", st.Deferred, st.Reclaimed, st.Advances)
	fmt.Printf("  comm:  %v\n", sys.Counters().Snapshot())
	if sys.HeapStats().UAFLoads != 0 {
		panic("use-after-free detected")
	}
}
