// workqueue: locality-aware producer/consumer over the owner-sharded
// queue. Every locale runs a producer feeding its *local* segment and
// a consumer draining it — the steady-state hot path performs zero
// remote communication, so the comm matrix stays flat however many
// locales run. The workload is deliberately imbalanced (the first
// `hot` locales produce several times more than the rest), so starved
// consumers fall back to work stealing (TryDequeueAny: one
// on-statement per probed victim) and the run finishes level.
//
// Compare with examples/distqueue, which funnels every locale's events
// through single-home queues: there the home column of the matrix
// carries the whole system's traffic; here the matrix shows only
// launches and steals.
//
// Run with:
//
//	go run ./examples/workqueue [-locales N] [-items N] [-hot N] [-skew F]
package main

import (
	"flag"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
	"gopgas/internal/structures/queue"
)

type task struct {
	Origin int
	Seq    int
}

func main() {
	locales := flag.Int("locales", 4, "number of simulated locales")
	items := flag.Int("items", 2000, "work items per cold producer")
	hot := flag.Int("hot", 1, "number of overloaded (hot) locales")
	skew := flag.Float64("skew", 4.0, "hot producers make skew x more items")
	flag.Parse()
	if *hot > *locales {
		*hot = *locales
	}

	sys := pgas.NewSystem(pgas.Config{
		Locales: *locales,
		Backend: comm.BackendNone,
		Latency: comm.DefaultProfile(),
	})
	defer sys.Shutdown()

	c0 := sys.Ctx(0)
	em := epoch.NewEpochManager(c0)
	q := queue.NewSharded[task](c0, em)

	quota := func(l int) int {
		if l < *hot {
			return int(float64(*items) * *skew)
		}
		return *items
	}
	total := 0
	for l := 0; l < *locales; l++ {
		total += quota(l)
	}

	processed := make([]atomic.Int64, *locales) // by consuming locale
	var stolen, done atomic.Int64
	var sum atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup

	for l := 0; l < *locales; l++ {
		// Producer: every item lands in the producer's own segment —
		// batched through the local bulk path, zero remote events.
		wg.Add(1)
		c0.AsyncOn(l, func(c *pgas.Ctx) {
			defer wg.Done()
			tok := em.Register(c)
			defer tok.Unregister(c)
			const batchLen = 64
			n := quota(c.Here())
			batch := make([]task, 0, batchLen)
			for i := 0; i < n; i++ {
				batch = append(batch, task{Origin: c.Here(), Seq: i})
				if len(batch) == batchLen {
					q.EnqueueBulk(c, tok, batch)
					batch = batch[:0]
				}
			}
			if len(batch) > 0 {
				q.EnqueueBulk(c, tok, batch)
			}
		})

		// Consumer: drain the local segment; steal only when starved.
		wg.Add(1)
		c0.AsyncOn(l, func(c *pgas.Ctx) {
			defer wg.Done()
			tok := em.Register(c)
			defer tok.Unregister(c)
			for done.Load() < int64(total) {
				t, from, ok := q.TryDequeueAny(c, tok)
				if !ok {
					continue // producers still warming up
				}
				if from != c.Here() {
					stolen.Add(1)
				}
				sum.Add(int64(t.Seq))
				processed[c.Here()].Add(1)
				if done.Add(1)%1024 == 0 {
					tok.TryReclaim(c)
				}
			}
		})
	}

	wg.Wait()
	em.Clear(c0)
	elapsed := time.Since(start)

	var want int64
	for l := 0; l < *locales; l++ {
		n := int64(quota(l))
		want += n * (n - 1) / 2
	}

	fmt.Printf("workqueue: %d items, %d locales (%d hot x%.1f) in %v\n",
		total, *locales, *hot, *skew, elapsed.Round(time.Millisecond))
	fmt.Printf("  checksum: %d (want %d, match=%v)\n", sum.Load(), want, sum.Load() == want)
	fmt.Printf("  stolen:   %d items (%.1f%%) rebalanced the skew\n",
		stolen.Load(), 100*float64(stolen.Load())/float64(total))
	fmt.Print("  consumed: ")
	for l := range processed {
		fmt.Printf("L%d=%d ", l, processed[l].Load())
	}
	fmt.Println()

	// The locality story, in the matrix: inbound totals stay flat
	// because the hot path never leaves the locale.
	cols := sys.Matrix().ColTotals()
	busiest, busiestAt := int64(0), 0
	for l, n := range cols {
		if n > busiest {
			busiest, busiestAt = n, l
		}
	}
	fmt.Printf("  comm:     %v\n", sys.Counters().Snapshot())
	fmt.Printf("  matrix:   busiest inbound column L%d=%d events (steals + launches only)\n",
		busiestAt, busiest)
	if sum.Load() != want {
		panic("checksum mismatch")
	}
	if sys.HeapStats().UAFLoads != 0 {
		panic("use-after-free detected")
	}
}
