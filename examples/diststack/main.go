// diststack: a distributed work-stealing-style scenario on the
// paper's Treiber stack (Listing 1). Producers on every locale push
// work items; consumers on every locale pop them; all nodes are
// reclaimed through the EpochManager while the structure is in use.
//
// The run is repeated under both network-atomic backends to show the
// RDMA-vs-active-message gap on the head cell, the paper's Figure 3
// story embodied in a real structure.
//
// Run with:
//
//	go run ./examples/diststack [-locales N] [-items N] [-tasks N]
package main

import (
	"flag"
	"fmt"
	"sync"
	"time"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
	"gopgas/internal/structures/stack"
)

type workItem struct {
	Producer int
	Seq      int
}

func main() {
	locales := flag.Int("locales", 8, "number of simulated locales")
	items := flag.Int("items", 2000, "work items per producer task")
	tasks := flag.Int("tasks", 2, "producer/consumer task pairs per locale")
	flag.Parse()

	for _, backend := range []comm.Backend{comm.BackendNone, comm.BackendUGNI} {
		run(*locales, *items, *tasks, backend)
	}
}

func run(locales, items, tasks int, backend comm.Backend) {
	sys := pgas.NewSystem(pgas.Config{
		Locales: locales,
		Backend: backend,
		Latency: comm.DefaultProfile(),
	})
	defer sys.Shutdown()

	em := epoch.NewEpochManager(sys.Ctx(0))
	st := stack.New[workItem](sys.Ctx(0), 0, em)

	total := locales * tasks * items
	var consumed sync.Map
	var wg sync.WaitGroup
	start := time.Now()

	// Producers: every locale pushes its own items.
	for l := 0; l < locales; l++ {
		for t := 0; t < tasks; t++ {
			wg.Add(1)
			go func(l, t int) {
				defer wg.Done()
				c := sys.Ctx(l)
				tok := em.Register(c)
				defer tok.Unregister(c)
				id := l*tasks + t
				for i := 0; i < items; i++ {
					st.Push(c, tok, workItem{Producer: id, Seq: i})
				}
			}(l, t)
		}
	}
	// Consumers: every locale pops until the total is accounted for.
	var remaining sync.WaitGroup
	remaining.Add(total)
	for l := 0; l < locales; l++ {
		for t := 0; t < tasks; t++ {
			wg.Add(1)
			go func(l int) {
				defer wg.Done()
				c := sys.Ctx(l)
				tok := em.Register(c)
				defer tok.Unregister(c)
				idle := 0
				for idle < 10_000 {
					item, ok := st.Pop(c, tok)
					if !ok {
						idle++
						continue
					}
					idle = 0
					key := [2]int{item.Producer, item.Seq}
					if _, dup := consumed.LoadOrStore(key, true); dup {
						panic(fmt.Sprintf("duplicate item %v", key))
					}
					remaining.Done()
					if item.Seq%512 == 0 {
						tok.TryReclaim(c)
					}
				}
			}(l)
		}
	}
	remaining.Wait() // all items accounted for
	wg.Wait()        // all tasks drained and unregistered

	c := sys.Ctx(0)
	em.Clear(c)
	elapsed := time.Since(start)

	n := 0
	consumed.Range(func(_, _ any) bool { n++; return true })
	stats := st.Stats()
	mgr := em.Stats(c)
	fmt.Printf("backend=%-5s locales=%d tasks=%d: %d items in %v (%.0f ops/s)\n",
		backend, locales, tasks, n, elapsed.Round(time.Millisecond),
		float64(stats.Pushes+stats.Pops)/elapsed.Seconds())
	fmt.Printf("  stack: pushes=%d pops=%d empty-polls=%d\n", stats.Pushes, stats.Pops, stats.Empty)
	fmt.Printf("  epoch: deferred=%d reclaimed=%d advances=%d backoffs=%d/%d\n",
		mgr.Deferred, mgr.Reclaimed, mgr.Advances, mgr.LocalBackoff, mgr.GlobalBackoff)
	fmt.Printf("  comm:  %v\n", sys.Counters().Snapshot())
	if heap := sys.HeapStats(); heap.UAFLoads != 0 {
		panic("use-after-free detected")
	}
	if n != total {
		panic(fmt.Sprintf("consumed %d of %d", n, total))
	}
}
