// Quickstart: a five-minute tour of the library — boot a simulated
// multi-locale PGAS system, perform atomic operations on objects with
// and without ABA protection, and reclaim memory concurrently with an
// EpochManager, exactly along the lines of the paper's Listings 1–3.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"gopgas/internal/comm"
	"gopgas/internal/core/atomics"
	"gopgas/internal/core/epoch"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

type record struct {
	Name  string
	Score int
}

func main() {
	// A 4-locale system with NIC atomics (the Cray "ugni" regime) and
	// the calibrated latency profile.
	sys := pgas.NewSystem(pgas.Config{
		Locales: 4,
		Backend: comm.BackendUGNI,
		Latency: comm.DefaultProfile(),
	})
	defer sys.Shutdown()

	sys.Run(func(c *pgas.Ctx) {
		fmt.Printf("booted %d locales, backend=%v\n\n", c.NumLocales(), sys.Backend())

		// --- AtomicObject: atomics on arbitrary objects ------------
		// Allocate two records on different locales and swap them
		// through an AtomicObject homed on locale 1.
		alice := c.AllocOn(2, &record{Name: "alice", Score: 1})
		bob := c.AllocOn(3, &record{Name: "bob", Score: 2})

		cell := atomics.New(c, 1, atomics.Options{ABA: true})
		cell.Write(c, alice)

		got := cell.Read(c)
		fmt.Printf("cell holds %v (locale %d): %+v\n",
			got, got.Locale(), pgas.MustDeref[*record](c, got))

		// Plain CAS — RDMA-able thanks to pointer compression.
		if cell.CompareAndSwap(c, alice, bob) {
			fmt.Printf("CAS alice -> bob succeeded\n")
		}

		// Stamped CAS — immune to address recycling.
		snapshot := cell.ReadABA(c)
		fmt.Printf("stamped read: %v\n", snapshot)
		if cell.CompareAndSwapABA(c, snapshot, alice) {
			fmt.Printf("CASABA bob -> alice succeeded (stamp bumped to %d)\n",
				cell.ReadABA(c).Count())
		}

		// --- EpochManager: concurrent-safe reclamation -------------
		// The Listing 3 pattern: a distributed forall where every task
		// registers its own token, defer-deletes objects, and the
		// manager reclaims them once quiescence is proven.
		em := epoch.NewEpochManager(c)

		const objects = 1000
		objs := make([]gas.Addr, objects)
		for i := range objs {
			objs[i] = c.AllocOn(i%c.NumLocales(), &record{Score: i})
		}

		pgas.ForallCyclic(c, objects, 2,
			func(tc *pgas.Ctx) *epoch.Token { return em.Register(tc) },
			func(tc *pgas.Ctx, tok *epoch.Token, i int) {
				tok.Pin(tc)
				tok.DeferDelete(tc, objs[i])
				tok.Unpin(tc)
				if i%256 == 0 {
					tok.TryReclaim(tc)
				}
			},
			func(tc *pgas.Ctx, tok *epoch.Token) { tok.Unregister(tc) },
		)
		em.Clear(c) // reclaim everything at once

		st := em.Stats(c)
		fmt.Printf("\nepoch manager: deferred=%d reclaimed=%d advances=%d\n",
			st.Deferred, st.Reclaimed, st.Advances)
		fmt.Printf("communication: %v\n", sys.Counters().Snapshot())
		fmt.Printf("heap:          %v\n", sys.HeapStats())
	})
}
