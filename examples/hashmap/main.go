// hashmap: a distributed key-value workload on the non-blocking hash
// map (the paper's Interlocked Hash Table application). Tasks on every
// locale run a mixed read/upsert/remove workload against buckets
// spread cyclically across the system; removed entries are reclaimed
// concurrently through the EpochManager.
//
// Run with:
//
//	go run ./examples/hashmap [-locales N] [-ops N] [-keys N] [-buckets N]
package main

import (
	"flag"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
	"gopgas/internal/structures/hashmap"
)

func main() {
	locales := flag.Int("locales", 4, "number of simulated locales")
	ops := flag.Int("ops", 4000, "operations per task")
	keys := flag.Int("keys", 512, "key universe size")
	buckets := flag.Int("buckets", 128, "bucket count")
	tasks := flag.Int("tasks", 2, "tasks per locale")
	flag.Parse()

	sys := pgas.NewSystem(pgas.Config{
		Locales: *locales,
		Backend: comm.BackendUGNI,
		Latency: comm.DefaultProfile(),
	})
	defer sys.Shutdown()

	c0 := sys.Ctx(0)
	em := epoch.NewEpochManager(c0)
	m := hashmap.New[int64](c0, *buckets, em)

	var reads, readHits, upserts, removes atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for l := 0; l < *locales; l++ {
		for t := 0; t < *tasks; t++ {
			wg.Add(1)
			go func(l int) {
				defer wg.Done()
				c := sys.Ctx(l)
				tok := em.Register(c)
				defer tok.Unregister(c)
				for i := 0; i < *ops; i++ {
					k := c.RandUint64() % uint64(*keys)
					switch r := c.RandIntn(100); {
					case r < 60: // 60% lookups
						if _, ok := m.Get(c, tok, k); ok {
							readHits.Add(1)
						}
						reads.Add(1)
					case r < 90: // 30% upserts
						m.Upsert(c, tok, k, int64(i))
						upserts.Add(1)
					default: // 10% removes
						m.Remove(c, tok, k)
						removes.Add(1)
					}
					if i%1024 == 0 {
						tok.TryReclaim(c)
					}
				}
			}(l)
		}
	}
	wg.Wait()
	em.Clear(c0)
	elapsed := time.Since(start)

	tok := em.Register(c0)
	size := m.Len(c0, tok)
	tok.Unregister(c0)

	totalOps := reads.Load() + upserts.Load() + removes.Load()
	fmt.Printf("hashmap: %d ops across %d locales x %d tasks in %v (%.0f ops/s)\n",
		totalOps, *locales, *tasks, elapsed.Round(time.Millisecond),
		float64(totalOps)/elapsed.Seconds())
	fmt.Printf("  mix: %d reads (%.0f%% hit), %d upserts, %d removes; final size %d/%d keys\n",
		reads.Load(), 100*float64(readHits.Load())/float64(reads.Load()),
		upserts.Load(), removes.Load(), size, *keys)
	mgr := em.Stats(c0)
	fmt.Printf("  epoch: deferred=%d reclaimed=%d advances=%d\n",
		mgr.Deferred, mgr.Reclaimed, mgr.Advances)
	st := m.Stats(c0)
	fmt.Printf("  lists: inserts=%d removes=%d unlinks=%d\n", st.Inserts, st.Removes, st.Unlinks)
	fmt.Printf("  comm:  %v\n", sys.Counters().Snapshot())
	if sys.HeapStats().UAFLoads != 0 {
		panic("use-after-free detected")
	}
}
