// distqueue: a multi-stage pipeline over Michael–Scott queues. Stage
// one generates synthetic events on every locale, stage two transforms
// them, stage three aggregates — each stage connected by a distributed
// lock-free queue whose nodes are reclaimed concurrently by the
// EpochManager. This is the "bounded memory under churn" use case
// Figure 4 models: reclamation runs sparsely while the pipeline is
// hot, so memory stays flat instead of growing with throughput.
//
// Run with:
//
//	go run ./examples/distqueue [-locales N] [-events N]
package main

import (
	"flag"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
	"gopgas/internal/structures/queue"
)

type event struct {
	Source int
	Value  int64
}

func main() {
	locales := flag.Int("locales", 4, "number of simulated locales")
	events := flag.Int("events", 3000, "events per source locale")
	flag.Parse()

	sys := pgas.NewSystem(pgas.Config{
		Locales: *locales,
		Backend: comm.BackendUGNI,
		Latency: comm.DefaultProfile(),
	})
	defer sys.Shutdown()

	em := epoch.NewEpochManager(sys.Ctx(0))
	// Stage queues homed on different locales to spread the hot cells.
	raw := queue.New[event](sys.Ctx(0), 0, em)
	squared := queue.New[event](sys.Ctx(0), (*locales)/2, em)

	total := *locales * *events
	var transformed, aggregated atomic.Int64
	var sum atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup

	// Stage 1: one generator per locale, launched as fire-and-forget
	// on-statements. Each generator batches its events and publishes
	// them with EnqueueBulk: the nodes ship to the queue's home in one
	// bulk transfer per batch and the whole batch links in with O(1)
	// CASes, instead of one allocation RPC + CAS round trip per event.
	const batchLen = 128
	c0 := sys.Ctx(0)
	for l := 0; l < *locales; l++ {
		wg.Add(1)
		c0.AsyncOn(l, func(c *pgas.Ctx) {
			defer wg.Done()
			tok := em.Register(c)
			defer tok.Unregister(c)
			l := c.Here()
			batch := make([]event, 0, batchLen)
			for i := 0; i < *events; i++ {
				batch = append(batch, event{Source: l, Value: int64(i)})
				if len(batch) == batchLen {
					raw.EnqueueBulk(c, tok, batch)
					batch = batch[:0]
				}
			}
			if len(batch) > 0 {
				raw.EnqueueBulk(c, tok, batch)
			}
		})
	}

	// Stage 2: transformers on every locale square the values.
	for l := 0; l < *locales; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			c := sys.Ctx(l)
			tok := em.Register(c)
			defer tok.Unregister(c)
			for transformed.Load() < int64(total) {
				ev, ok := raw.Dequeue(c, tok)
				if !ok {
					continue
				}
				ev.Value *= ev.Value
				squared.Enqueue(c, tok, ev)
				if transformed.Add(1)%1024 == 0 {
					tok.TryReclaim(c) // sparse reclamation while hot
				}
			}
		}(l)
	}

	// Stage 3: a single aggregator.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := sys.Ctx(0)
		tok := em.Register(c)
		defer tok.Unregister(c)
		for aggregated.Load() < int64(total) {
			ev, ok := squared.Dequeue(c, tok)
			if !ok {
				continue
			}
			sum.Add(ev.Value)
			aggregated.Add(1)
		}
	}()

	wg.Wait()
	c := sys.Ctx(0)
	em.Clear(c)
	elapsed := time.Since(start)

	// sum of i^2 for i in [0, events) per locale.
	n := int64(*events)
	wantPerLocale := (n - 1) * n * (2*n - 1) / 6
	want := wantPerLocale * int64(*locales)
	fmt.Printf("pipeline: %d events through 3 stages in %v\n", total, elapsed.Round(time.Millisecond))
	fmt.Printf("  aggregate: sum of squares = %d (want %d, match=%v)\n", sum.Load(), want, sum.Load() == want)
	mgr := em.Stats(c)
	fmt.Printf("  epoch: deferred=%d reclaimed=%d advances=%d\n", mgr.Deferred, mgr.Reclaimed, mgr.Advances)
	heap := sys.HeapStats()
	fmt.Printf("  heap:  high-water %d live slots for %d total enqueues (bounded churn)\n",
		heap.HighWater, 2*total)
	fmt.Printf("  comm:  %v\n", sys.Counters().Snapshot())
	if sum.Load() != want {
		panic("aggregation mismatch")
	}
	if heap.UAFLoads != 0 {
		panic("use-after-free detected")
	}
}
