// Scenario: the workload engine as a library — a hot-set flash-crowd
// against the distributed hash map, with one slow locale injected.
//
// 90% of the traffic hammers 10% of the keyspace (a flash crowd on
// popular keys) while locale 1 runs 6x slower than its peers (a
// degraded node). The engine records, per phase, the throughput, the
// HDR-style latency percentiles, and the exact communication counter
// and matrix deltas; this example prints the summary and then uses the
// report programmatically to show what fault injection did to the tail
// and to verify the run stayed safe (no use-after-free, no double
// free) and deterministic (the digest replays under the same seed).
//
//	go run ./examples/scenario -locales 4 -ops 20000
package main

import (
	"flag"
	"fmt"
	"os"

	"gopgas/internal/workload"
)

func main() {
	locales := flag.Int("locales", 4, "number of simulated locales")
	tasks := flag.Int("tasks", 2, "worker tasks per locale")
	ops := flag.Int("ops", 20000, "ops per task in the run phase")
	slow := flag.Float64("slow-factor", 6, "slowdown of the degraded locale")
	flag.Parse()

	spec := workload.Spec{
		Name:           "flash-crowd",
		Structure:      workload.StructureHashmap,
		Locales:        *locales,
		TasksPerLocale: *tasks,
		Backend:        "ugni",
		Seed:           0xFACE,
		Keyspace:       1 << 14,
		Dist:           workload.KeyDist{Kind: workload.DistHotSet, HotFraction: 0.1, HotProb: 0.9},
		Faults:         workload.Faults{SlowFactor: *slow, SlowLocale: 1 % *locales},
		Phases: []workload.Phase{
			{Name: "load", Mix: workload.Mix{Insert: 1}, OpsPerTask: *ops / 2},
			{Name: "run", Mix: workload.Mix{Insert: 2, Get: 7, Remove: 1, Bulk: 0.02}, OpsPerTask: *ops, ReclaimEvery: 512},
			{Name: "churn", Mix: workload.Mix{Insert: 3, Get: 5, Remove: 2}, OpsPerTask: *ops / 4, Rounds: 2, Churn: true},
		},
	}

	rep, err := workload.Run(spec, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		os.Exit(2)
	}
	rep.WriteSummary(os.Stdout)

	// The report is data: pull the hotspot evidence out of it.
	run := rep.Phases[1]
	fmt.Printf("\nrun phase evidence:\n")
	fmt.Printf("  tail amplification p999/p50: %.1fx\n",
		float64(run.Latency.P999NS)/float64(max(run.Latency.P50NS, 1)))
	fmt.Printf("  busiest locale absorbs %d of %d remote events (%.0f%%)\n",
		run.MaxInbound, run.RemoteOps, 100*float64(run.MaxInbound)/float64(max(run.RemoteOps, 1)))
	fmt.Printf("  replay digest: %#x (same seed => same stream)\n", run.Digest)

	if !rep.Heap.Safe() {
		fmt.Printf("SAFETY VIOLATION: %d poisoned loads, %d double frees\n",
			rep.Heap.UAFLoads, rep.Heap.UAFFrees)
		os.Exit(1)
	}
	fmt.Println("safety: all loads valid, all frees unique — reclamation held under faults")
}
