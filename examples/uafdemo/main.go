// uafdemo: the paper's safety argument, made visible. The same
// reader/writer workload runs twice over a shared object slot:
//
//  1. with eager frees — the writer frees the old object as soon as it
//     swaps in a new one. Readers holding the old reference hit freed
//     (poisoned) slots: the use-after-free the gas heap detects is the
//     undefined behaviour a real system would suffer;
//  2. with the EpochManager — the writer defer-deletes instead, and
//     reclamation waits for proven quiescence. Zero UAFs, while memory
//     still gets reclaimed.
//
// Run with:
//
//	go run ./examples/uafdemo [-iters N]
package main

import (
	"flag"
	"fmt"
	"sync"
	"sync/atomic"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

type blob struct{ payload [8]int64 }

func main() {
	iters := flag.Int("iters", 30000, "writer iterations")
	flag.Parse()

	fmt.Println("=== round 1: eager free (no reclamation protection) ===")
	uafs := run(*iters, false)
	fmt.Printf("detected use-after-free loads: %d  %s\n\n", uafs,
		verdict(uafs > 0, "← the bug EBR exists to prevent", "(timing-dependent; rerun to observe)"))

	fmt.Println("=== round 2: EpochManager (epoch-based reclamation) ===")
	uafs = run(*iters, true)
	fmt.Printf("detected use-after-free loads: %d  %s\n", uafs,
		verdict(uafs == 0, "← safe: reclamation deferred past quiescence", "UNEXPECTED"))
	if uafs != 0 {
		panic("EBR failed to prevent use-after-free")
	}
}

func verdict(ok bool, good, bad string) string {
	if ok {
		return good
	}
	return bad
}

func run(iters int, useEBR bool) int64 {
	sys := pgas.NewSystem(pgas.Config{Locales: 2, Backend: comm.BackendNone})
	defer sys.Shutdown()
	c0 := sys.Ctx(0)

	var em epoch.EpochManager
	if useEBR {
		em = epoch.NewEpochManager(c0)
	}

	var current atomic.Uint64 // the shared slot (a gas.Addr)
	current.Store(uint64(c0.Alloc(&blob{})))

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: dereference whatever the slot holds.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := sys.Ctx(r % 2)
			var tok *epoch.Token
			if useEBR {
				tok = em.Register(c)
				defer tok.Unregister(c)
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if useEBR {
					tok.Pin(c)
				}
				addr := gas.Addr(current.Load())
				// Under EBR this deref is guaranteed safe; without it,
				// the slot may have been freed underneath us.
				if b, ok := pgas.Deref[*blob](c, addr); ok {
					_ = b.payload[0]
				}
				if useEBR {
					tok.Unpin(c)
				}
			}
		}(r)
	}

	// Writer: replace the object every iteration.
	func() {
		c := c0
		var tok *epoch.Token
		if useEBR {
			tok = em.Register(c)
			defer tok.Unregister(c)
		}
		for i := 0; i < iters; i++ {
			fresh := c.Alloc(&blob{})
			old := gas.Addr(current.Swap(uint64(fresh)))
			if useEBR {
				tok.Pin(c)
				tok.DeferDelete(c, old) // logical removal; free deferred
				tok.Unpin(c)
				if i%1024 == 0 {
					tok.TryReclaim(c)
				}
			} else {
				c.Free(old) // eager free: unsafe under concurrency
			}
		}
	}()
	close(stop)
	wg.Wait()

	if useEBR {
		em.Clear(c0)
		st := em.Stats(c0)
		fmt.Printf("reclaimed %d of %d deferred objects across %d epoch advances\n",
			st.Reclaimed, st.Deferred, st.Advances)
	}
	return sys.HeapStats().UAFLoads
}
